// Direct unit coverage for sim::TraceSink — the digest is what the
// determinism suite compares, so its behaviour under the keep-entries and
// clear() knobs must be pinned down exactly.
#include <gtest/gtest.h>

#include "sim/trace.hpp"

namespace clouds::sim {
namespace {

constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;

void feed(TraceSink& sink) {
  sink.record(msec(1), "node0", "ratp", "retransmit tx 7");
  sink.record(msec(2), "node1", "dsm", "read fault page 3");
  sink.record(msec(2), "node1", "dsm", "read fault page 3");  // duplicates count too
  sink.record(msec(40), "net", "eth", "frame dropped");
}

TEST(TraceSink, FreshSinkStartsAtFnvOffsetBasis) {
  TraceSink sink;
  EXPECT_EQ(sink.digest(), kFnvOffsetBasis);
  EXPECT_EQ(sink.count(), 0u);
  EXPECT_TRUE(sink.entries().empty());
}

TEST(TraceSink, KeepEntriesFalsePreservesDigestAndCount) {
  TraceSink keeping;
  TraceSink digest_only;
  digest_only.setKeepEntries(false);
  feed(keeping);
  feed(digest_only);

  // Same stream, same digest and count — whether or not entries are stored.
  EXPECT_EQ(digest_only.digest(), keeping.digest());
  EXPECT_EQ(digest_only.count(), keeping.count());
  EXPECT_EQ(keeping.count(), 4u);
  EXPECT_EQ(keeping.entries().size(), 4u);
  EXPECT_TRUE(digest_only.entries().empty());
  EXPECT_NE(digest_only.digest(), kFnvOffsetBasis);
}

TEST(TraceSink, DigestDependsOnContentAndTime) {
  TraceSink a, b, c;
  a.record(msec(1), "n", "cat", "x");
  b.record(msec(1), "n", "cat", "y");   // different message
  c.record(msec(2), "n", "cat", "x");   // different timestamp
  EXPECT_NE(a.digest(), b.digest());
  EXPECT_NE(a.digest(), c.digest());
}

TEST(TraceSink, DisabledSinkRecordsNothing) {
  TraceSink sink;
  sink.setEnabled(false);
  feed(sink);
  EXPECT_EQ(sink.digest(), kFnvOffsetBasis);
  EXPECT_EQ(sink.count(), 0u);
  EXPECT_TRUE(sink.entries().empty());
}

TEST(TraceSink, ClearResetsDigestToSeedValue) {
  TraceSink sink;
  feed(sink);
  ASSERT_NE(sink.digest(), kFnvOffsetBasis);
  sink.clear();
  EXPECT_EQ(sink.digest(), kFnvOffsetBasis);
  EXPECT_EQ(sink.count(), 0u);
  EXPECT_TRUE(sink.entries().empty());

  // A cleared sink behaves exactly like a fresh one.
  TraceSink fresh;
  feed(sink);
  feed(fresh);
  EXPECT_EQ(sink.digest(), fresh.digest());
  EXPECT_EQ(sink.count(), fresh.count());
}

}  // namespace
}  // namespace clouds::sim
