#include "store/disk_store.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "sim/simulation.hpp"

namespace clouds::store {
namespace {

struct StoreFixture {
  sim::Simulation sim{7};
  sim::CostModel cost;
  DiskStore store{100, cost, /*cache=*/4};

  // Run fn inside a process and drain the simulation.
  void run(std::function<void(sim::Process&)> fn) {
    sim.spawn("driver", std::move(fn));
    sim.run();
  }
  static Bytes page(std::byte fill) { return Bytes(ra::kPageSize, fill); }
};

TEST(DiskStore, CreateStatDestroy) {
  StoreFixture f;
  auto name = f.store.createSegment(3 * ra::kPageSize);
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(ra::sysnameHome(name.value()), 100u);
  auto info = f.store.stat(name.value());
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().length, 3 * ra::kPageSize);
  EXPECT_EQ(info.value().pageCount(), 3u);
  ASSERT_TRUE(f.store.destroySegment(name.value()).ok());
  EXPECT_EQ(f.store.stat(name.value()).code(), Errc::not_found);
}

TEST(DiskStore, UnwrittenPagesReadZeroWithoutDiskIo) {
  StoreFixture f;
  auto name = f.store.createSegment(ra::kPageSize).value();
  f.run([&](sim::Process& self) {
    Bytes buf(ra::kPageSize, std::byte{0xff});
    auto written = f.store.readPage(self, {name, 0}, buf);
    ASSERT_TRUE(written.ok());
    EXPECT_FALSE(written.value());
    EXPECT_EQ(buf[0], std::byte{0});
    EXPECT_EQ(f.store.diskReads(), 0u);
    EXPECT_EQ(f.sim.now(), sim::kZero);  // no mechanical delay
  });
}

TEST(DiskStore, WriteThenReadBackWithDiskCosts) {
  StoreFixture f;
  auto name = f.store.createSegment(2 * ra::kPageSize).value();
  f.run([&](sim::Process& self) {
    ASSERT_TRUE(f.store.writePage(self, {name, 1}, StoreFixture::page(std::byte{0xab})).ok());
    Bytes buf(ra::kPageSize);
    auto written = f.store.readPage(self, {name, 1}, buf);
    ASSERT_TRUE(written.ok());
    EXPECT_TRUE(written.value());
    EXPECT_EQ(buf[100], std::byte{0xab});
    // The read hit the buffer cache (just written): one disk write, no read.
    EXPECT_EQ(f.store.diskWrites(), 1u);
    EXPECT_EQ(f.store.diskReads(), 0u);
  });
}

TEST(DiskStore, BufferCacheMissPaysSeek) {
  StoreFixture f;
  auto name = f.store.createSegment(ra::kPageSize).value();
  f.run([&](sim::Process& self) {
    ASSERT_TRUE(f.store.writePage(self, {name, 0}, StoreFixture::page(std::byte{1})).ok());
    f.store.clearBufferCache();
    const auto before = f.sim.now();
    Bytes buf(ra::kPageSize);
    ASSERT_TRUE(f.store.readPage(self, {name, 0}, buf).ok());
    EXPECT_EQ(f.sim.now() - before, f.cost.disk_seek_rotate + f.cost.disk_per_page);
    EXPECT_EQ(f.store.diskReads(), 1u);
  });
}

TEST(DiskStore, CacheEvictsLru) {
  StoreFixture f;  // cache capacity 4
  auto name = f.store.createSegment(8 * ra::kPageSize).value();
  f.run([&](sim::Process& self) {
    for (std::uint32_t p = 0; p < 6; ++p) {
      ASSERT_TRUE(
          f.store.writePage(self, {name, p}, StoreFixture::page(std::byte{0x11})).ok());
    }
    Bytes buf(ra::kPageSize);
    const auto reads_before = f.store.diskReads();
    ASSERT_TRUE(f.store.readPage(self, {name, 0}, buf).ok());  // evicted: page 0 re-read
    EXPECT_EQ(f.store.diskReads(), reads_before + 1);
  });
}

TEST(DiskStore, CacheCountersTrackHitsMissesEvictions) {
  StoreFixture f;  // cache capacity 4
  auto name = f.store.createSegment(6 * ra::kPageSize).value();
  f.run([&](sim::Process& self) {
    for (std::uint32_t p = 0; p < 5; ++p) {
      ASSERT_TRUE(f.store.writePage(self, {name, p}, StoreFixture::page(std::byte{1})).ok());
    }
    EXPECT_EQ(f.store.cacheEvictions(), 1u);  // page 0 fell out when page 4 arrived
    Bytes buf(ra::kPageSize);
    ASSERT_TRUE(f.store.readPage(self, {name, 4}, buf).ok());  // resident
    EXPECT_EQ(f.store.cacheHits(), 1u);
    EXPECT_EQ(f.store.cacheMisses(), 0u);
    ASSERT_TRUE(f.store.readPage(self, {name, 0}, buf).ok());  // was evicted
    EXPECT_EQ(f.store.cacheMisses(), 1u);
    EXPECT_EQ(f.store.cacheEvictions(), 2u);  // page 1 is the LRU victim now
    // The hit refreshed recency, so page 4 must still be resident.
    const auto reads = f.store.diskReads();
    ASSERT_TRUE(f.store.readPage(self, {name, 4}, buf).ok());
    EXPECT_EQ(f.store.diskReads(), reads);
  });
}

TEST(DiskStore, OutOfRangeAndUnknownErrors) {
  StoreFixture f;
  auto name = f.store.createSegment(ra::kPageSize).value();
  f.run([&](sim::Process& self) {
    Bytes buf(ra::kPageSize);
    EXPECT_EQ(f.store.readPage(self, {name, 5}, buf).code(), Errc::bad_argument);
    EXPECT_EQ(f.store.readPage(self, {Sysname(1, 2), 0}, buf).code(), Errc::not_found);
    Bytes small(10);
    EXPECT_EQ(f.store.readPage(self, {name, 0}, small).code(), Errc::bad_argument);
  });
}

TEST(DiskStore, PreparedTransactionLifecycle) {
  StoreFixture f;
  auto name = f.store.createSegment(2 * ra::kPageSize).value();
  f.run([&](sim::Process& self) {
    std::vector<PageUpdate> ups;
    ups.push_back({{name, 0}, StoreFixture::page(std::byte{0x42})});
    ASSERT_TRUE(f.store.prepare(self, 777, std::move(ups)).ok());
    EXPECT_TRUE(f.store.hasPrepared(777));
    // Not yet visible.
    Bytes buf(ra::kPageSize);
    ASSERT_TRUE(f.store.readPage(self, {name, 0}, buf).ok());
    EXPECT_EQ(buf[0], std::byte{0});
    // Commit applies.
    ASSERT_TRUE(f.store.commitPrepared(self, 777).ok());
    EXPECT_FALSE(f.store.hasPrepared(777));
    ASSERT_TRUE(f.store.readPage(self, {name, 0}, buf).ok());
    EXPECT_EQ(buf[0], std::byte{0x42});
    // Idempotent: committing again is a no-op.
    ASSERT_TRUE(f.store.commitPrepared(self, 777).ok());
  });
}

TEST(DiskStore, AbortDiscardsPrepared) {
  StoreFixture f;
  auto name = f.store.createSegment(ra::kPageSize).value();
  f.run([&](sim::Process& self) {
    std::vector<PageUpdate> ups;
    ups.push_back({{name, 0}, StoreFixture::page(std::byte{0x99})});
    ASSERT_TRUE(f.store.prepare(self, 1, std::move(ups)).ok());
    ASSERT_TRUE(f.store.abortPrepared(self, 1).ok());
    Bytes buf(ra::kPageSize);
    ASSERT_TRUE(f.store.readPage(self, {name, 0}, buf).ok());
    EXPECT_EQ(buf[0], std::byte{0});
  });
}

TEST(DiskStore, PreparedLogSurvivesVolatileLoss) {
  StoreFixture f;
  auto name = f.store.createSegment(ra::kPageSize).value();
  f.run([&](sim::Process& self) {
    std::vector<PageUpdate> ups;
    ups.push_back({{name, 0}, StoreFixture::page(std::byte{0x33})});
    ASSERT_TRUE(f.store.prepare(self, 5, std::move(ups)).ok());
    f.store.loseVolatileState();  // crash: cache gone, log intact
    EXPECT_TRUE(f.store.hasPrepared(5));
    EXPECT_EQ(f.store.preparedKeys(5).size(), 1u);
    ASSERT_TRUE(f.store.commitPrepared(self, 5).ok());
    Bytes buf(ra::kPageSize);
    ASSERT_TRUE(f.store.readPage(self, {name, 0}, buf).ok());
    EXPECT_EQ(buf[0], std::byte{0x33});
  });
}

TEST(DiskStore, SnapshotRoundTripThroughHostFile) {
  const std::string path = ::testing::TempDir() + "/clouds_store_snapshot.bin";
  Sysname name;
  {
    StoreFixture f;
    name = f.store.createSegment(2 * ra::kPageSize).value();
    f.run([&](sim::Process& self) {
      ASSERT_TRUE(f.store.writePage(self, {name, 1}, StoreFixture::page(std::byte{0x5a})).ok());
      std::vector<PageUpdate> ups;
      ups.push_back({{name, 0}, StoreFixture::page(std::byte{0x77})});
      ASSERT_TRUE(f.store.prepare(self, 9, std::move(ups)).ok());
    });
    ASSERT_TRUE(f.store.saveTo(path).ok());
  }
  {
    StoreFixture f;
    ASSERT_TRUE(f.store.loadFrom(path).ok());
    EXPECT_TRUE(f.store.hasPrepared(9));  // in-doubt transaction survives shutdown
    f.run([&](sim::Process& self) {
      Bytes buf(ra::kPageSize);
      ASSERT_TRUE(f.store.readPage(self, {name, 1}, buf).ok());
      EXPECT_EQ(buf[0], std::byte{0x5a});
      // New segments do not collide with pre-shutdown names.
      auto fresh = f.store.createSegment(ra::kPageSize);
      ASSERT_TRUE(fresh.ok());
      EXPECT_NE(fresh.value(), name);
    });
  }
  std::remove(path.c_str());
}

TEST(DiskStore, ResizeDropsTruncatedPages) {
  StoreFixture f;
  auto name = f.store.createSegment(3 * ra::kPageSize).value();
  f.run([&](sim::Process& self) {
    ASSERT_TRUE(f.store.writePage(self, {name, 2}, StoreFixture::page(std::byte{9})).ok());
    ASSERT_TRUE(f.store.resize(name, ra::kPageSize).ok());
    Bytes buf(ra::kPageSize);
    EXPECT_EQ(f.store.readPage(self, {name, 2}, buf).code(), Errc::bad_argument);
    ASSERT_TRUE(f.store.resize(name, 3 * ra::kPageSize).ok());
    // Regrown pages are zero-filled, not resurrected.
    auto written = f.store.readPage(self, {name, 2}, buf);
    ASSERT_TRUE(written.ok());
    EXPECT_FALSE(written.value());
  });
}

}  // namespace
}  // namespace clouds::store
