// Property tests for the data-server store: arbitrary interleavings of
// writes, prepares, commits, aborts and crashes must always match a simple
// reference model (a map of committed pages).
#include <gtest/gtest.h>

#include <map>

#include "sim/simulation.hpp"
#include "store/disk_store.hpp"

namespace clouds::store {
namespace {

class StorePropertySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StorePropertySweep, RandomOpsMatchReferenceModel) {
  sim::Simulation sim(GetParam());
  sim::CostModel cost;
  DiskStore store(100, cost, /*cache=*/8);

  constexpr std::uint32_t kPages = 6;
  const Sysname seg = store.createSegment(kPages * ra::kPageSize).value();

  // Reference: committed page fill bytes; pending: prepared transactions.
  std::map<ra::PageIndex, std::byte> committed;
  std::map<std::uint64_t, std::vector<PageUpdate>> pending;
  std::uint64_t next_tx = 1;

  sim.spawn("driver", [&](sim::Process& self) {
    auto& rng = sim.rng();
    auto fill = [&](std::byte b) { return Bytes(ra::kPageSize, b); };
    for (int step = 0; step < 300; ++step) {
      switch (rng() % 6) {
        case 0: {  // direct write
          const auto page = static_cast<ra::PageIndex>(rng() % kPages);
          const auto b = static_cast<std::byte>(rng() & 0xff);
          ASSERT_TRUE(store.writePage(self, {seg, page}, fill(b)).ok());
          committed[page] = b;
          break;
        }
        case 1: {  // prepare a transaction of 1-3 pages
          std::vector<PageUpdate> ups;
          const int n = 1 + static_cast<int>(rng() % 3);
          for (int i = 0; i < n; ++i) {
            const auto page = static_cast<ra::PageIndex>(rng() % kPages);
            ups.push_back({{seg, page}, fill(static_cast<std::byte>(rng() & 0xff))});
          }
          const std::uint64_t tx = next_tx++;
          ASSERT_TRUE(store.prepare(self, tx, ups).ok());
          pending[tx] = std::move(ups);
          break;
        }
        case 2: {  // commit a random pending transaction
          if (pending.empty()) break;
          auto it = std::next(pending.begin(),
                              static_cast<std::ptrdiff_t>(rng() % pending.size()));
          ASSERT_TRUE(store.commitPrepared(self, it->first).ok());
          for (const auto& u : it->second) committed[u.key.page] = u.data[0];
          pending.erase(it);
          break;
        }
        case 3: {  // abort a random pending transaction
          if (pending.empty()) break;
          auto it = std::next(pending.begin(),
                              static_cast<std::ptrdiff_t>(rng() % pending.size()));
          ASSERT_TRUE(store.abortPrepared(self, it->first).ok());
          pending.erase(it);
          break;
        }
        case 4: {  // crash: volatile cache gone, durable state intact
          store.loseVolatileState();
          break;
        }
        case 5: {  // read-check one page against the model
          const auto page = static_cast<ra::PageIndex>(rng() % kPages);
          Bytes buf(ra::kPageSize);
          auto written = store.readPage(self, {seg, page}, buf);
          ASSERT_TRUE(written.ok());
          if (committed.count(page) != 0) {
            EXPECT_TRUE(written.value());
            EXPECT_EQ(buf[17], committed[page]) << "step " << step << " page " << page;
          } else {
            EXPECT_FALSE(written.value());
            EXPECT_EQ(buf[17], std::byte{0});
          }
          break;
        }
      }
    }
    // Full final audit, including the prepared set.
    for (std::uint32_t p = 0; p < kPages; ++p) {
      Bytes buf(ra::kPageSize);
      ASSERT_TRUE(store.readPage(self, {seg, p}, buf).ok());
      const std::byte want = committed.count(p) != 0 ? committed[p] : std::byte{0};
      EXPECT_EQ(buf[100], want) << "final page " << p;
    }
    std::vector<std::uint64_t> want_prepared;
    for (const auto& [tx, _] : pending) want_prepared.push_back(tx);
    EXPECT_EQ(store.preparedTxids(), want_prepared);
  });
  sim.run();
}

INSTANTIATE_TEST_SUITE_P(Seeds, StorePropertySweep, ::testing::Values(3, 1010, 777777));

}  // namespace
}  // namespace clouds::store
