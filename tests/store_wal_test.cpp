// Storage engine v2 test battery (docs/STORAGE.md).
//
// Covers the wal engine's four load-bearing promises:
//  * group commit — concurrent forcers coalesce into one batched log write,
//    which is where the engine's throughput win over the flat path comes from;
//  * durability — an acknowledged write/prepare/decision survives any crash,
//    an unacknowledged one either fully survives (torn-tail promotion) or
//    fully vanishes, and aborted data never resurrects;
//  * bounded log — the checkpointer truncates everything the images already
//    cover, except prepare records whose transaction is still undecided;
//  * equivalence — a program that cannot observe timing cannot distinguish
//    the engines: the same operation stream produces the same results, the
//    same errors, and the same durable state under flat and wal.
#include "store/disk_store.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "sim/simulation.hpp"

namespace clouds::store {
namespace {

Bytes page(std::byte fill) { return Bytes(ra::kPageSize, fill); }

// A page image carrying a 16-bit tag in its first two bytes; an unwritten
// page reads as tag 0.
Bytes tagged(std::uint16_t tag) {
  Bytes b(ra::kPageSize);
  b[0] = static_cast<std::byte>(tag & 0xff);
  b[1] = static_cast<std::byte>(tag >> 8);
  return b;
}

std::uint16_t tagOf(const Bytes& b) {
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(b[0]) |
                                    (static_cast<std::uint16_t>(b[1]) << 8));
}

struct WalFixture {
  sim::Simulation sim{7};
  sim::CostModel cost;
  DiskStore store{100, cost, /*cache=*/8, StoreEngine::wal};

  void run(std::function<void(sim::Process&)> fn) {
    sim.spawn("driver", std::move(fn));
    sim.run();
  }
};

// ---------------------------------------------------------------------------
// Write path: read-your-committed-writes before write-back, then write-back.
// ---------------------------------------------------------------------------

TEST(WalStore, CommittedWritesVisibleBeforeWriteBack) {
  WalFixture f;
  auto name = f.store.createSegment(4 * ra::kPageSize).value();
  f.run([&](sim::Process& self) {
    ASSERT_TRUE(f.store.writePage(self, {name, 1}, page(std::byte{0xab})).ok());
    // Durable in the log, not yet in the segment image.
    EXPECT_EQ(f.store.walForces(), 1u);
    EXPECT_EQ(f.store.dirtyPageCount(), 1u);
    EXPECT_EQ(f.store.diskWrites(), 0u);
    Bytes buf(ra::kPageSize);
    auto written = f.store.readPage(self, {name, 1}, buf);
    ASSERT_TRUE(written.ok());
    EXPECT_TRUE(written.value());
    EXPECT_EQ(buf[0], std::byte{0xab});
    // One bounded sweep applies the image, checkpoints, and truncates.
    auto applied = f.store.writeBackSome(self, 64);
    ASSERT_TRUE(applied.ok());
    EXPECT_EQ(applied.value(), 1u);
    EXPECT_EQ(f.store.dirtyPageCount(), 0u);
    EXPECT_EQ(f.store.diskWrites(), 1u);
    EXPECT_GT(f.store.walAppliedLsn(), 0u);
    EXPECT_NE(f.store.walCheckpointHash(), 0u);
    ASSERT_TRUE(f.store.readPage(self, {name, 1}, buf).ok());
    EXPECT_EQ(buf[0], std::byte{0xab});
  });
}

// ---------------------------------------------------------------------------
// Group commit: concurrent writers share one force and beat flat by >= 2x.
// ---------------------------------------------------------------------------

// Sixteen writers each run four single-page transactions (prepare + commit)
// back to back — the 2PC participant pattern the consistency layer drives.
sim::Duration runConcurrentCommitters(StoreEngine engine, std::uint64_t* forces_out) {
  sim::Simulation sim{11};
  sim::CostModel cost;
  DiskStore store{100, cost, /*cache=*/64, engine};
  auto name = store.createSegment(16 * ra::kPageSize).value();
  constexpr std::uint32_t kWriters = 16;
  constexpr std::uint32_t kTxnsEach = 4;
  for (std::uint32_t w = 0; w < kWriters; ++w) {
    sim.spawn("writer" + std::to_string(w), [&store, name, w](sim::Process& self) {
      for (std::uint32_t i = 0; i < kTxnsEach; ++i) {
        const std::uint64_t txid = w * 100 + i;
        std::vector<PageUpdate> ups;
        ups.push_back({{name, w}, page(static_cast<std::byte>(i + 1))});
        ASSERT_TRUE(store.prepare(self, txid, std::move(ups)).ok());
        ASSERT_TRUE(store.commitPrepared(self, txid).ok());
      }
    });
  }
  sim.run();
  const sim::Duration elapsed = sim.now() - sim::TimePoint{};
  if (forces_out != nullptr) *forces_out = store.walForces();
  // Every commit must be durable and readable regardless of engine.
  sim.spawn("audit", [&store, name](sim::Process& self) {
    for (std::uint32_t w = 0; w < kWriters; ++w) {
      Bytes buf(ra::kPageSize);
      auto written = store.readPage(self, {name, w}, buf);
      ASSERT_TRUE(written.ok());
      EXPECT_TRUE(written.value());
      EXPECT_EQ(buf[0], static_cast<std::byte>(kTxnsEach));
    }
  });
  sim.run();
  return elapsed;
}

TEST(WalStore, GroupCommitCoalescesSixteenCommitters) {
  std::uint64_t flat_forces = 0;
  std::uint64_t wal_forces = 0;
  const sim::Duration flat_elapsed = runConcurrentCommitters(StoreEngine::flat, &flat_forces);
  const sim::Duration wal_elapsed = runConcurrentCommitters(StoreEngine::wal, &wal_forces);
  EXPECT_EQ(flat_forces, 0u);
  // 128 force points (64 prepares + 64 commits) coalesce into a handful of
  // batched log writes: concurrent forcers share one leader per window.
  EXPECT_LE(wal_forces, 16u);
  // The acceptance bar from EXPERIMENTS E11, enforced at the store level:
  // 16-writer sustained commit throughput at least doubles over the flat
  // engine's serialized prepare/commit/apply path.
  EXPECT_LE(wal_elapsed * 2, flat_elapsed)
      << "wal=" << wal_elapsed.count() << "ns flat=" << flat_elapsed.count() << "ns";
}

// ---------------------------------------------------------------------------
// Crash semantics: torn tail, prefix promotion, replay.
// ---------------------------------------------------------------------------

TEST(WalStore, CrashDuringForceDropsUnforcedTail) {
  WalFixture f;
  auto name = f.store.createSegment(2 * ra::kPageSize).value();
  Result<void> write_result = okResult();
  f.sim.spawn("writer", [&](sim::Process& self) {
    write_result = f.store.writePage(self, {name, 0}, page(std::byte{0x5c}));
  });
  // Crash inside the group-commit window: the record is appended but never
  // forced, so the reboot must drop it and the writer must see the failure.
  f.sim.schedule(sim::usec(50), [&] { f.store.loseVolatileState(); });
  f.sim.run();
  EXPECT_EQ(write_result.code(), Errc::io);
  EXPECT_EQ(f.store.walDurableLsn(), 0u);
  EXPECT_EQ(f.store.walRecordCount(), 0u);
  f.run([&](sim::Process& self) {
    Bytes buf(ra::kPageSize, std::byte{0xff});
    auto written = f.store.readPage(self, {name, 0}, buf);
    ASSERT_TRUE(written.ok());
    EXPECT_FALSE(written.value());
    EXPECT_EQ(buf[0], std::byte{0});
  });
}

TEST(WalStore, TornTailPromotesPrefixOfForceBatch) {
  WalFixture f;
  auto name = f.store.createSegment(2 * ra::kPageSize).value();
  Result<void> first = okResult();
  Result<void> second = okResult();
  f.sim.spawn("w0", [&](sim::Process& self) {
    first = f.store.writePage(self, {name, 0}, page(std::byte{0xaa}));
  });
  f.sim.spawn("w1", [&](sim::Process& self) {
    second = f.store.writePage(self, {name, 1}, page(std::byte{0xbb}));
  });
  // The log is sequential: a torn force persists a prefix. Keep one record —
  // w0's write survives even though its ack was lost; w1's vanishes.
  f.store.setTornTailKeep(1);
  f.sim.schedule(sim::usec(100), [&] { f.store.loseVolatileState(); });
  f.sim.run();
  EXPECT_EQ(first.code(), Errc::io);
  EXPECT_EQ(second.code(), Errc::io);
  EXPECT_EQ(f.store.walDurableLsn(), 1u);
  f.run([&](sim::Process& self) {
    Bytes buf(ra::kPageSize);
    auto p0 = f.store.readPage(self, {name, 0}, buf);
    ASSERT_TRUE(p0.ok());
    EXPECT_TRUE(p0.value());
    EXPECT_EQ(buf[0], std::byte{0xaa});
    auto p1 = f.store.readPage(self, {name, 1}, buf);
    ASSERT_TRUE(p1.ok());
    EXPECT_FALSE(p1.value());
  });
}

TEST(WalStore, RebootKeepsCommittedDropsAbortedAndChargesReplay) {
  WalFixture f;
  auto name = f.store.createSegment(4 * ra::kPageSize).value();
  f.run([&](sim::Process& self) {
    std::vector<PageUpdate> t1;
    t1.push_back({{name, 0}, page(std::byte{0xaa})});
    ASSERT_TRUE(f.store.prepare(self, 1, std::move(t1)).ok());
    std::vector<PageUpdate> t2;
    t2.push_back({{name, 1}, page(std::byte{0xbb})});
    ASSERT_TRUE(f.store.prepare(self, 2, std::move(t2)).ok());
    ASSERT_TRUE(f.store.commitPrepared(self, 1).ok());
    ASSERT_TRUE(f.store.abortPrepared(self, 2).ok());
    ASSERT_TRUE(f.store.writePage(self, {name, 2}, page(std::byte{0xcc})).ok());

    f.store.loseVolatileState();
    EXPECT_FALSE(f.store.hasPrepared(1));
    EXPECT_FALSE(f.store.hasPrepared(2));
    const sim::TimePoint before = f.sim.now();
    auto replayed = f.store.recover(self);
    ASSERT_TRUE(replayed.ok());
    EXPECT_GT(replayed.value(), 0u);
    EXPECT_EQ(f.sim.now() - before,
              f.cost.disk_seek_rotate + static_cast<std::int64_t>(replayed.value()) *
                                            f.cost.wal_replay_per_record);

    Bytes buf(ra::kPageSize);
    ASSERT_TRUE(f.store.readPage(self, {name, 0}, buf).ok());
    EXPECT_EQ(buf[0], std::byte{0xaa});  // committed before the crash
    auto aborted = f.store.readPage(self, {name, 1}, buf);
    ASSERT_TRUE(aborted.ok());
    EXPECT_FALSE(aborted.value());  // aborted data never resurrects
    ASSERT_TRUE(f.store.readPage(self, {name, 2}, buf).ok());
    EXPECT_EQ(buf[0], std::byte{0xcc});
  });
}

// ---------------------------------------------------------------------------
// Checkpoint / truncation: the log stays bounded, undecided prepares pin it.
// ---------------------------------------------------------------------------

TEST(WalStore, CheckpointTruncatesButUndecidedPreparePins) {
  WalFixture f;
  auto name = f.store.createSegment(8 * ra::kPageSize).value();
  f.run([&](sim::Process& self) {
    std::vector<PageUpdate> ups;
    ups.push_back({{name, 7}, page(std::byte{0x77})});
    ASSERT_TRUE(f.store.prepare(self, 42, std::move(ups)).ok());
    for (int round = 0; round < 3; ++round) {
      for (std::uint32_t p = 0; p < 6; ++p) {
        ASSERT_TRUE(f.store
                        .writePage(self, {name, p},
                                   page(static_cast<std::byte>(round * 6 + p + 1)))
                        .ok());
      }
      ASSERT_TRUE(f.store.writeBackSome(self, 64).ok());
    }
    // 18 page writes and 3 checkpoints went through the log, yet only the
    // undecided prepare and the newest checkpoint record remain.
    EXPECT_GT(f.store.walTruncatedRecords(), 0u);
    EXPECT_GE(f.store.walCheckpoints(), 3u);
    EXPECT_LE(f.store.walRecordCount(), 4u);

    f.store.loseVolatileState();
    EXPECT_TRUE(f.store.hasPrepared(42));  // truncation never orphans a prepare
    ASSERT_TRUE(f.store.commitPrepared(self, 42).ok());
    Bytes buf(ra::kPageSize);
    ASSERT_TRUE(f.store.readPage(self, {name, 7}, buf).ok());
    EXPECT_EQ(buf[0], std::byte{0x77});
  });
}

TEST(WalStore, BackgroundFlusherDrainsAndCheckpoints) {
  WalFixture f;
  f.store.startFlusher(f.sim);
  auto name = f.store.createSegment(4 * ra::kPageSize).value();
  f.run([&](sim::Process& self) {
    for (std::uint32_t p = 0; p < 4; ++p) {
      ASSERT_TRUE(f.store.writePage(self, {name, p}, page(std::byte{0x21})).ok());
    }
    EXPECT_EQ(f.store.dirtyPageCount(), 4u);
    self.delay(f.cost.wal_writeback_interval * 4);
  });
  EXPECT_EQ(f.store.dirtyPageCount(), 0u);
  EXPECT_GE(f.store.walCheckpoints(), 1u);
  EXPECT_EQ(f.store.walPagesWrittenBack(), 4u);
  // Everything the flusher applied still reads back after a reboot.
  f.run([&](sim::Process& self) {
    f.store.loseVolatileState();
    Bytes buf(ra::kPageSize);
    for (std::uint32_t p = 0; p < 4; ++p) {
      ASSERT_TRUE(f.store.readPage(self, {name, p}, buf).ok());
      EXPECT_EQ(buf[0], std::byte{0x21});
    }
  });
}

// ---------------------------------------------------------------------------
// Snapshots: the v2 format round-trips the log and loads across engines.
// ---------------------------------------------------------------------------

TEST(WalStore, SnapshotRoundTripsAcrossEngines) {
  const std::string path = ::testing::TempDir() + "/clouds_wal_snapshot.bin";
  Sysname name;
  {
    WalFixture f;
    name = f.store.createSegment(2 * ra::kPageSize).value();
    f.run([&](sim::Process& self) {
      ASSERT_TRUE(f.store.writePage(self, {name, 1}, page(std::byte{0x5a})).ok());
      std::vector<PageUpdate> ups;
      ups.push_back({{name, 0}, page(std::byte{0x77})});
      ASSERT_TRUE(f.store.prepare(self, 9, std::move(ups)).ok());
    });
    ASSERT_TRUE(f.store.saveTo(path).ok());
  }
  {
    // wal -> wal: log, dirty table, and the in-doubt transaction survive.
    WalFixture f;
    ASSERT_TRUE(f.store.loadFrom(path).ok());
    EXPECT_TRUE(f.store.hasPrepared(9));
    f.run([&](sim::Process& self) {
      Bytes buf(ra::kPageSize);
      ASSERT_TRUE(f.store.readPage(self, {name, 1}, buf).ok());
      EXPECT_EQ(buf[0], std::byte{0x5a});
      ASSERT_TRUE(f.store.commitPrepared(self, 9).ok());
      ASSERT_TRUE(f.store.readPage(self, {name, 0}, buf).ok());
      EXPECT_EQ(buf[0], std::byte{0x77});
    });
  }
  {
    // wal -> flat: the durable log is replayed into the images on load, and
    // the in-doubt transaction is still decidable.
    sim::Simulation sim{7};
    sim::CostModel cost;
    DiskStore store{100, cost, /*cache=*/8, StoreEngine::flat};
    ASSERT_TRUE(store.loadFrom(path).ok());
    EXPECT_TRUE(store.hasPrepared(9));
    sim.spawn("driver", [&](sim::Process& self) {
      Bytes buf(ra::kPageSize);
      ASSERT_TRUE(store.readPage(self, {name, 1}, buf).ok());
      EXPECT_EQ(buf[0], std::byte{0x5a});
      ASSERT_TRUE(store.abortPrepared(self, 9).ok());
      auto p0 = store.readPage(self, {name, 0}, buf);
      ASSERT_TRUE(p0.ok());
      EXPECT_FALSE(p0.value());
    });
    sim.run();
  }
  {
    // flat -> wal: a snapshot without a log section synthesizes durable
    // prepare records so the 2PC contract carries over.
    sim::Simulation sim{7};
    sim::CostModel cost;
    DiskStore flat{100, cost, /*cache=*/8, StoreEngine::flat};
    Sysname fname;
    sim.spawn("driver", [&](sim::Process& self) {
      fname = flat.createSegment(ra::kPageSize).value();
      ASSERT_TRUE(flat.writePage(self, {fname, 0}, page(std::byte{0x11})).ok());
      std::vector<PageUpdate> ups;
      ups.push_back({{fname, 0}, page(std::byte{0x22})});
      ASSERT_TRUE(flat.prepare(self, 4, std::move(ups)).ok());
    });
    sim.run();
    ASSERT_TRUE(flat.saveTo(path).ok());

    WalFixture f;
    ASSERT_TRUE(f.store.loadFrom(path).ok());
    EXPECT_TRUE(f.store.hasPrepared(4));
    f.run([&](sim::Process& self) {
      Bytes buf(ra::kPageSize);
      ASSERT_TRUE(f.store.readPage(self, {fname, 0}, buf).ok());
      EXPECT_EQ(buf[0], std::byte{0x11});
      ASSERT_TRUE(f.store.commitPrepared(self, 4).ok());
      ASSERT_TRUE(f.store.readPage(self, {fname, 0}, buf).ok());
      EXPECT_EQ(buf[0], std::byte{0x22});
    });
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Engine equivalence: one operation stream, two engines, identical traces.
// ---------------------------------------------------------------------------

struct SweepOp {
  enum Kind : std::uint8_t {
    write,
    prepare,
    decide_known,
    decide_unknown,
    crash,
    read,
    toggle_fault,
    resize
  };
  Kind kind = read;
  std::uint32_t page = 0;
  std::uint8_t fill = 0;
  std::uint64_t txid = 0;
  std::uint32_t extra_page = 0;  // second prepare update (when two_updates)
  bool two_updates = false;
  bool commit = false;
  std::uint64_t new_pages = 0;  // resize target
};

// Pre-generate a deterministic stream. Only structural choices the driver
// cannot make blindly are constrained here: decisions target transactions
// that were actually prepared without a fault, and resizes wait until no
// transaction is pending (a shrink under a pending prepare would exercise
// commit-time partial-application, which the engines deliberately do not
// promise to match).
std::vector<SweepOp> makeSweep(std::uint64_t seed, std::size_t steps) {
  std::mt19937_64 rng(seed);
  std::vector<SweepOp> ops;
  std::set<std::uint64_t> pending;
  std::uint64_t next_tx = 1;
  bool faulty = false;
  for (std::size_t i = 0; i < steps; ++i) {
    SweepOp op;
    switch (rng() % 12) {
      case 0:
      case 1:
      case 2:
        op.kind = SweepOp::write;
        op.page = static_cast<std::uint32_t>(rng() % 10);  // 8..9 out of range
        op.fill = static_cast<std::uint8_t>(rng() & 0xff);
        break;
      case 3:
      case 4:
        op.kind = SweepOp::prepare;
        op.txid = next_tx++;
        op.page = static_cast<std::uint32_t>(rng() % 4);
        op.two_updates = (rng() % 2) == 0;
        op.extra_page = static_cast<std::uint32_t>(rng() % 4);
        if (!faulty) pending.insert(op.txid);
        break;
      case 5:
        if (!pending.empty()) {
          op.kind = SweepOp::decide_known;
          auto it = pending.begin();
          std::advance(it, static_cast<long>(rng() % pending.size()));
          op.txid = *it;
          op.commit = (rng() % 2) == 0;
          pending.erase(it);
        } else {
          op.kind = SweepOp::read;
          op.page = static_cast<std::uint32_t>(rng() % 8);
        }
        break;
      case 6:
        op.kind = SweepOp::decide_unknown;
        op.txid = 9000 + rng() % 8;
        op.commit = (rng() % 2) == 0;
        break;
      case 7:
        op.kind = SweepOp::crash;
        break;
      case 8:
      case 9:
        op.kind = SweepOp::read;
        op.page = static_cast<std::uint32_t>(rng() % 10);
        break;
      case 10:
        op.kind = SweepOp::toggle_fault;
        faulty = !faulty;
        break;
      default:
        if (pending.empty()) {
          op.kind = SweepOp::resize;
          op.new_pages = 4 + rng() % 5;  // shrink to 4..8 pages, or grow back
        } else {
          op.kind = SweepOp::read;
          op.page = static_cast<std::uint32_t>(rng() % 8);
        }
        break;
    }
    ops.push_back(op);
  }
  return ops;
}

std::vector<std::string> runSweep(StoreEngine engine, const std::vector<SweepOp>& ops) {
  sim::Simulation sim{99};
  sim::CostModel cost;
  DiskStore store{100, cost, /*cache=*/8, engine};
  auto name = store.createSegment(8 * ra::kPageSize).value();
  std::vector<std::string> trace;
  sim.spawn("driver", [&](sim::Process& self) {
    for (const auto& op : ops) {
      switch (op.kind) {
        case SweepOp::write: {
          auto r = store.writePage(self, {name, op.page},
                                   Bytes(ra::kPageSize, static_cast<std::byte>(op.fill)));
          trace.push_back("w" + std::to_string(op.page) + ":" +
                          std::to_string(static_cast<int>(r.code())));
          break;
        }
        case SweepOp::prepare: {
          std::vector<PageUpdate> ups;
          ups.push_back(
              {{name, op.page}, Bytes(ra::kPageSize, static_cast<std::byte>(op.fill))});
          if (op.two_updates) {
            ups.push_back({{name, op.extra_page},
                           Bytes(ra::kPageSize, static_cast<std::byte>(op.fill ^ 0xff))});
          }
          auto r = store.prepare(self, op.txid, std::move(ups));
          trace.push_back("p" + std::to_string(op.txid) + ":" +
                          std::to_string(static_cast<int>(r.code())));
          break;
        }
        case SweepOp::decide_known:
        case SweepOp::decide_unknown: {
          auto r = op.commit ? store.commitPrepared(self, op.txid)
                             : store.abortPrepared(self, op.txid);
          trace.push_back((op.commit ? "c" : "a") + std::to_string(op.txid) + ":" +
                          std::to_string(static_cast<int>(r.code())));
          break;
        }
        case SweepOp::crash:
          store.loseVolatileState();
          trace.push_back("crash");
          break;
        case SweepOp::read: {
          Bytes buf(ra::kPageSize);
          auto r = store.readPage(self, {name, op.page}, buf);
          std::string t = "r" + std::to_string(op.page) + ":" +
                          std::to_string(static_cast<int>(r.code()));
          if (r.ok()) {
            t += r.value() ? ":1:" : ":0:";
            t += std::to_string(static_cast<int>(buf[0]));
          }
          trace.push_back(t);
          break;
        }
        case SweepOp::toggle_fault:
          store.setFaulty(!store.faulty());
          trace.push_back("fault");
          break;
        case SweepOp::resize: {
          auto r = store.resize(name, op.new_pages * ra::kPageSize);
          trace.push_back("z" + std::to_string(op.new_pages) + ":" +
                          std::to_string(static_cast<int>(r.code())));
          break;
        }
      }
    }
    // Final durable-state audit: reboot, then dump everything observable.
    store.setFaulty(false);
    store.loseVolatileState();
    std::string prepared = "prepared:";
    for (std::uint64_t txid : store.preparedTxids()) {
      prepared += std::to_string(txid) + ",";
      for (const auto& key : store.preparedKeys(txid)) {
        prepared += "p" + std::to_string(key.page) + ";";
      }
    }
    trace.push_back(prepared);
    auto info = store.stat(name);
    ASSERT_TRUE(info.ok());
    trace.push_back("len:" + std::to_string(info.value().length));
    for (std::uint32_t p = 0; p < info.value().pageCount(); ++p) {
      Bytes buf(ra::kPageSize);
      auto r = store.readPage(self, {name, p}, buf);
      ASSERT_TRUE(r.ok());
      trace.push_back("page" + std::to_string(p) + ":" + (r.value() ? "1:" : "0:") +
                      std::to_string(static_cast<int>(buf[0])));
    }
  });
  sim.run();
  return trace;
}

class EngineEquivalenceSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineEquivalenceSweep, FlatAndWalProduceIdenticalTraces) {
  const auto ops = makeSweep(GetParam(), 400);
  const auto flat_trace = runSweep(StoreEngine::flat, ops);
  const auto wal_trace = runSweep(StoreEngine::wal, ops);
  ASSERT_EQ(flat_trace.size(), wal_trace.size());
  for (std::size_t i = 0; i < flat_trace.size(); ++i) {
    EXPECT_EQ(flat_trace[i], wal_trace[i]) << "first divergence at step " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineEquivalenceSweep,
                         ::testing::Values(3, 1010, 777777));

// ---------------------------------------------------------------------------
// Crash-replay chaos matrix: random crashes with torn tails against a live
// flusher. Invariant: an acknowledged operation survives every reboot; an
// unacknowledged one either fully lands or fully vanishes; aborted and
// never-prepared data never appears.
// ---------------------------------------------------------------------------

class WalCrashReplaySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WalCrashReplaySweep, AcknowledgedStateSurvivesRandomCrashes) {
  const std::uint64_t seed = GetParam();
  sim::Simulation sim{seed};
  sim::CostModel cost;
  DiskStore store{100, cost, /*cache=*/16, StoreEngine::wal};
  store.startFlusher(sim);
  auto name = store.createSegment(8 * ra::kPageSize).value();
  constexpr std::uint32_t kPages = 8;

  // Per-page set of tags the page may legitimately hold. An acknowledged
  // write collapses it to one tag; an unacknowledged (crashed) write adds
  // its tag — torn-tail promotion may have persisted it anyway.
  std::vector<std::set<std::uint16_t>> possible(kPages, std::set<std::uint16_t>{0});
  std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ull + 1);
  std::uint16_t next_tag = 1;
  std::uint64_t crashes = 0;

  sim.spawn("driver", [&](sim::Process& self) {
    struct PendingTx {
      bool definite = false;  // prepare was acknowledged
      std::vector<std::pair<std::uint32_t, std::uint16_t>> updates;
    };
    std::map<std::uint64_t, PendingTx> pending;
    std::uint64_t next_tx = 1;

    for (int step = 0; step < 240; ++step) {
      if (step < 200 && rng() % 6 == 0) {
        // Arm a crash that may land inside a force window or a write-back
        // sweep, sometimes persisting a prefix of the torn batch.
        store.setTornTailKeep(rng() % 3);
        const auto at = sim::usec(static_cast<std::int64_t>(1 + rng() % 4000));
        sim.schedule(at, [&store, &crashes] {
          ++crashes;
          store.loseVolatileState();
        });
      }
      switch (rng() % 8) {
        case 0:
        case 1:
        case 2: {  // plain write
          const std::uint32_t p = static_cast<std::uint32_t>(rng() % kPages);
          const std::uint16_t tag = next_tag++;
          auto r = store.writePage(self, {name, p}, tagged(tag));
          if (r.ok()) {
            possible[p] = {tag};
          } else {
            ASSERT_EQ(r.code(), Errc::io) << r.error().toString();
            possible[p].insert(tag);
          }
          break;
        }
        case 3: {  // prepare
          const std::uint64_t txid = next_tx++;
          PendingTx tx;
          std::vector<PageUpdate> ups;
          const std::size_t n = 1 + rng() % 2;
          for (std::size_t u = 0; u < n; ++u) {
            const std::uint32_t p = static_cast<std::uint32_t>(rng() % kPages);
            const std::uint16_t tag = next_tag++;
            tx.updates.emplace_back(p, tag);
            ups.push_back({{name, p}, tagged(tag)});
          }
          auto r = store.prepare(self, txid, std::move(ups));
          if (r.ok()) {
            tx.definite = true;
          } else {
            ASSERT_EQ(r.code(), Errc::io) << r.error().toString();
          }
          pending[txid] = std::move(tx);
          break;
        }
        case 4: {  // decide a pending transaction; retry until acknowledged
          if (pending.empty()) break;
          auto it = pending.begin();
          std::advance(it, static_cast<long>(rng() % pending.size()));
          const bool commit = rng() % 2 == 0;
          for (;;) {
            auto r = commit ? store.commitPrepared(self, it->first)
                            : store.abortPrepared(self, it->first);
            if (r.ok()) break;
            ASSERT_EQ(r.code(), Errc::io) << r.error().toString();
          }
          if (commit) {
            for (const auto& [p, tag] : it->second.updates) {
              // A committed definite prepare lands for sure; a maybe-prepare
              // (its ack was lost in a crash) commits as a no-op when the
              // record vanished, so the tag is only a possibility.
              if (it->second.definite) {
                possible[p] = {tag};
              } else {
                possible[p].insert(tag);
              }
            }
          }
          pending.erase(it);
          break;
        }
        case 5: {  // read-check; the observation collapses any ambiguity
          const std::uint32_t p = static_cast<std::uint32_t>(rng() % kPages);
          Bytes buf(ra::kPageSize);
          auto r = store.readPage(self, {name, p}, buf);
          ASSERT_TRUE(r.ok()) << r.error().toString();
          const std::uint16_t tag = tagOf(buf);
          ASSERT_TRUE(possible[p].count(tag) != 0)
              << "page " << p << " holds impossible tag " << tag;
          possible[p] = {tag};
          break;
        }
        case 6: {  // explicit bounded sweep alongside the daemon flusher
          auto r = store.writeBackSome(self, 16);
          if (!r.ok()) {
            ASSERT_EQ(r.code(), Errc::io) << r.error().toString();
          }
          break;
        }
        default: {  // reboot-time replay charge
          auto r = store.recover(self);
          if (!r.ok()) {
            ASSERT_EQ(r.code(), Errc::io) << r.error().toString();
          }
          break;
        }
      }
    }

    // Let stragglers (armed crashes, flusher sweeps) land, then audit the
    // durable state after one final reboot.
    self.delay(sim::msec(200));
    store.loseVolatileState();
    ASSERT_TRUE(store.recover(self).ok());
    for (std::uint32_t p = 0; p < kPages; ++p) {
      Bytes buf(ra::kPageSize);
      ASSERT_TRUE(store.readPage(self, {name, p}, buf).ok());
      const std::uint16_t tag = tagOf(buf);
      EXPECT_TRUE(possible[p].count(tag) != 0)
          << "page " << p << " holds impossible tag " << tag << " after reboot";
    }
    // Undecided transactions whose prepare was acknowledged must still be
    // decidable after any number of crashes.
    for (const auto& [txid, tx] : pending) {
      if (tx.definite) {
        EXPECT_TRUE(store.hasPrepared(txid)) << "txid " << txid;
      }
    }
  });
  sim.run();
  EXPECT_GT(crashes, 0u) << "the sweep never crashed — weaken the schedule odds";
  EXPECT_GE(store.walCheckpoints(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WalCrashReplaySweep, ::testing::Values(3, 1010, 777777));

}  // namespace
}  // namespace clouds::store
