// System objects: name server and user I/O manager (paper §4.2), plus the
// anonymous-segment partition backing volatile memory.
#include <gtest/gtest.h>

#include "ra/anon_partition.hpp"
#include "sysobj/name_server.hpp"
#include "sysobj/user_io.hpp"
#include "testbed.hpp"

namespace clouds::test {
namespace {

struct SysobjBed : Testbed {
  sysobj::NameServer names;
  std::unique_ptr<ra::Node> ws_node;
  std::unique_ptr<sysobj::Workstation> ws;

  SysobjBed() : Testbed(2, 1), names(*data[0].node) {
    ws_node = std::make_unique<ra::Node>(sim, cost, ether, 200, "ws0",
                                         static_cast<int>(ra::NodeRole::workstation));
    ws = std::make_unique<sysobj::Workstation>(*ws_node);
  }
};

TEST(NameServer, BindLookupUnbindOverNetwork) {
  SysobjBed f;
  sysobj::NameClient client(*f.compute[0].node, f.data[0].node->id());
  const Sysname a = ra::makeHomedSysname(100, 1);
  const Sysname b = ra::makeHomedSysname(100, 2);
  f.sim.spawn("driver", [&](sim::Process& self) {
    ASSERT_TRUE(client.bind(self, "alpha", {a}).ok());
    EXPECT_EQ(client.bind(self, "alpha", {b}).code(), Errc::already_exists);
    ASSERT_TRUE(client.bind(self, "alpha", {b}, /*replace=*/true).ok());
    auto got = client.lookup(self, "alpha");
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value().sysnames.front(), b);
    EXPECT_FALSE(got.value().isReplicated());
    // Replica sets round-trip too.
    ASSERT_TRUE(client.bind(self, "replicated", {a, b}).ok());
    auto rep = client.lookup(self, "replicated");
    ASSERT_TRUE(rep.ok());
    EXPECT_TRUE(rep.value().isReplicated());
    ASSERT_EQ(rep.value().sysnames.size(), 2u);
    // Listing and unbinding.
    auto all = client.list(self);
    ASSERT_TRUE(all.ok());
    EXPECT_EQ(all.value().size(), 2u);
    ASSERT_TRUE(client.unbind(self, "alpha").ok());
    EXPECT_EQ(client.lookup(self, "alpha").code(), Errc::not_found);
    EXPECT_EQ(client.unbind(self, "alpha").code(), Errc::not_found);
  });
  f.sim.run();
}

TEST(NameServer, RejectsEmptyBindings) {
  SysobjBed f;
  EXPECT_EQ(f.names.bind("", {{Sysname(1, 1)}}).code(), Errc::bad_argument);
  EXPECT_EQ(f.names.bind("x", sysobj::Binding{}).code(), Errc::bad_argument);
}

TEST(NameServer, DirectFailurePaths) {
  SysobjBed f;
  const Sysname a = ra::makeHomedSysname(100, 1);
  const Sysname b = ra::makeHomedSysname(100, 2);
  // Unbinding a name that was never bound is not_found, not a crash.
  EXPECT_EQ(f.names.unbind("ghost").code(), Errc::not_found);
  // Rebinding without replace refuses and leaves the original intact.
  ASSERT_TRUE(f.names.bind("x", {{a}}).ok());
  EXPECT_EQ(f.names.bind("x", {{b}}).code(), Errc::already_exists);
  auto got = f.names.lookup("x");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().sysnames.front(), a);
}

TEST(NameServer, SaveLoadRoundTripPreservesReplicaSets) {
  const std::string path = ::testing::TempDir() + "clouds_names_roundtrip.bin";
  const Sysname a = ra::makeHomedSysname(100, 1);
  const Sysname b = ra::makeHomedSysname(101, 2);
  const Sysname c = ra::makeHomedSysname(102, 3);
  {
    SysobjBed f;
    ASSERT_TRUE(f.names.bind("solo", {{a}}).ok());
    ASSERT_TRUE(f.names.bind("replicated", {{a, b, c}}).ok());
    ASSERT_TRUE(f.names.saveTo(path).ok());
  }
  // A fresh name server (fresh simulation, fresh node) resumes the map,
  // including replica-set order.
  SysobjBed g;
  ASSERT_TRUE(g.names.loadFrom(path).ok());
  auto solo = g.names.lookup("solo");
  ASSERT_TRUE(solo.ok());
  EXPECT_FALSE(solo.value().isReplicated());
  EXPECT_EQ(solo.value().sysnames.front(), a);
  auto rep = g.names.lookup("replicated");
  ASSERT_TRUE(rep.ok());
  ASSERT_TRUE(rep.value().isReplicated());
  ASSERT_EQ(rep.value().sysnames.size(), 3u);
  EXPECT_EQ(rep.value().sysnames[0], a);
  EXPECT_EQ(rep.value().sysnames[1], b);
  EXPECT_EQ(rep.value().sysnames[2], c);
  EXPECT_EQ(g.names.list().size(), 2u);
}

TEST(NameServer, LoadFromMissingFileFails) {
  SysobjBed f;
  EXPECT_FALSE(f.names.loadFrom("/nonexistent/dir/clouds_names.bin").ok());
}

TEST(UserIo, WritesRouteToWindowAndReadsConsumeInput) {
  SysobjBed f;
  sysobj::IoClient io(*f.compute[0].node);
  f.ws->supplyInput(3, "typed line");
  f.sim.spawn("thread", [&](sim::Process& self) {
    ASSERT_TRUE(io.write(self, 200, 3, "hello window 3").ok());
    ASSERT_TRUE(io.write(self, 200, 4, "hello window 4").ok());
    auto line = io.readLine(self, 200, 3);
    ASSERT_TRUE(line.ok());
    EXPECT_EQ(line.value(), "typed line");
    // Empty input fails fast (deterministic terminals).
    EXPECT_EQ(io.readLine(self, 200, 3).code(), Errc::not_found);
  });
  f.sim.run();
  EXPECT_EQ(f.ws->joinedOutput(3), "hello window 3");
  EXPECT_EQ(f.ws->joinedOutput(4), "hello window 4");
}

TEST(UserIo, DeadWorkstationTimesOut) {
  SysobjBed f;
  sysobj::IoClient io(*f.compute[0].node);
  f.ws_node->crash();
  Errc code = Errc::ok;
  f.sim.spawn("thread", [&](sim::Process& self) {
    code = io.write(self, 200, 0, "into the void").code();
  });
  f.sim.run();
  EXPECT_EQ(code, Errc::timeout);
}

TEST(AnonPartition, ZeroFilledCreateAccessDestroy) {
  Testbed f(1, 1);
  ra::AnonPartition anon(f.compute[0].node->id(), f.compute[0].node->cpu(), f.cost);
  f.sim.spawn("driver", [&](sim::Process& self) {
    const Sysname seg = anon.create(3 * ra::kPageSize);
    EXPECT_TRUE(ra::isAnonName(seg));
    EXPECT_TRUE(anon.serves(seg));
    auto h = anon.resolvePage(self, {seg, 0}, ra::Access::write);
    ASSERT_TRUE(h.ok());
    h.value().data[5] = std::byte{0xaa};
    auto h2 = anon.resolvePage(self, {seg, 0}, ra::Access::read);
    EXPECT_EQ(h2.value().data[5], std::byte{0xaa});  // same frame
    EXPECT_EQ(anon.resolvePage(self, {seg, 5}, ra::Access::read).code(), Errc::protection);
    anon.destroy(seg);
    EXPECT_EQ(anon.resolvePage(self, {seg, 0}, ra::Access::read).code(), Errc::not_found);
    EXPECT_EQ(anon.stat(self, seg).code(), Errc::not_found);
  });
  f.sim.run();
}

}  // namespace
}  // namespace clouds::test
