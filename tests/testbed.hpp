// Shared multi-node wiring for kernel/DSM/consistency tests: N compute
// servers and M data servers on one Ethernet, mirroring the paper's
// prototype configuration (diskless Sun-3/60 compute servers + data
// servers), without the full Clouds object layer on top.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "dsm/client.hpp"
#include "dsm/server.hpp"
#include "dsm/sync_client.hpp"
#include "net/ethernet.hpp"
#include "ra/mmu.hpp"
#include "ra/node.hpp"
#include "sim/cost_model.hpp"
#include "sim/fault.hpp"
#include "sim/simulation.hpp"
#include "store/disk_store.hpp"

namespace clouds::test {

struct Testbed {
  sim::Simulation sim;
  sim::CostModel cost;
  net::Ethernet ether{sim, cost};

  struct DataServer {
    std::unique_ptr<ra::Node> node;
    std::unique_ptr<store::DiskStore> store;
    std::unique_ptr<dsm::DsmServer> server;
  };
  struct ComputeServer {
    std::unique_ptr<ra::Node> node;
    dsm::DsmClientPartition* dsm = nullptr;  // owned by the node
    std::unique_ptr<ra::Mmu> mmu;
    std::unique_ptr<dsm::SyncClient> sync;
  };

  std::vector<DataServer> data;
  std::vector<ComputeServer> compute;

  // Node ids: data servers 100, 101, ...; compute servers 1, 2, ...
  explicit Testbed(int n_compute, int n_data, std::uint64_t seed = 42,
                   std::size_t frame_capacity = 2048)
      : sim(seed) {
    for (int i = 0; i < n_data; ++i) {
      DataServer ds;
      ds.node = std::make_unique<ra::Node>(sim, cost, ether, 100 + i, "data" + std::to_string(i),
                                           static_cast<int>(ra::NodeRole::data));
      ds.store = std::make_unique<store::DiskStore>(ds.node->id(), cost);
      ds.store->attachMetrics(sim.metrics(), ds.node->name());
      ds.server = std::make_unique<dsm::DsmServer>(*ds.node, *ds.store);
      data.push_back(std::move(ds));
    }
    for (int i = 0; i < n_compute; ++i) {
      ComputeServer cs;
      cs.node = std::make_unique<ra::Node>(sim, cost, ether, 1 + i, "cpu" + std::to_string(i),
                                           static_cast<int>(ra::NodeRole::compute));
      auto part = std::make_unique<dsm::DsmClientPartition>(*cs.node, nullptr, frame_capacity);
      cs.dsm = part.get();
      cs.node->addPartition(std::move(part));
      cs.mmu = std::make_unique<ra::Mmu>(*cs.node);
      cs.sync = std::make_unique<dsm::SyncClient>(*cs.node, nullptr);
      compute.push_back(std::move(cs));
    }
  }

  // ---- Failure injection (mirrors Cluster's helpers) ----
  void notifyClientCrash(net::NodeId client) {
    for (auto& ds : data) {
      if (!ds.node->alive() || ds.node->id() == client) continue;
      ds.server->onClientCrash(client);
    }
  }
  void crashCompute(int idx) {
    ra::Node& n = *compute.at(static_cast<std::size_t>(idx)).node;
    n.crash();
    notifyClientCrash(n.id());
  }
  void restartCompute(int idx) { compute.at(static_cast<std::size_t>(idx)).node->restart(); }
  void crashData(int idx) { data.at(static_cast<std::size_t>(idx)).node->crash(); }
  void restartData(int idx) { data.at(static_cast<std::size_t>(idx)).node->restart(); }

  // Register every node (by name) and the medium with a fault plan.
  void installFaultHooks(sim::FaultPlan& plan) {
    for (auto& ds : data) {
      ra::Node* node = ds.node.get();
      store::DiskStore* st = ds.store.get();
      sim::FaultHooks hooks;
      hooks.crash = [node] { node->crash(); };
      hooks.reboot = [node] { node->restart(); };
      hooks.disk_faulty = [st](bool faulty) { st->setFaulty(faulty); };
      plan.registerTarget(node->name(), std::move(hooks));
    }
    for (auto& cs : compute) {
      ra::Node* node = cs.node.get();
      sim::FaultHooks hooks;
      hooks.crash = [this, node] {
        node->crash();
        notifyClientCrash(node->id());
      };
      hooks.reboot = [node] { node->restart(); };
      plan.registerTarget(node->name(), std::move(hooks));
    }
    sim::MediumFaultHooks medium;
    medium.partition = [this](const std::vector<std::string>& a,
                              const std::vector<std::string>& b) {
      ether.partitionGroups(resolveNames(a), resolveNames(b));
    };
    medium.heal = [this](const std::vector<std::string>& a, const std::vector<std::string>& b) {
      ether.healGroups(resolveNames(a), resolveNames(b));
    };
    medium.loss_rate = [this](double rate) { ether.setDropRate(rate); };
    plan.setMediumHooks(std::move(medium));
  }

  std::vector<net::NodeId> resolveNames(const std::vector<std::string>& names) const {
    std::vector<net::NodeId> out;
    for (const std::string& name : names) {
      net::NodeId id = net::kNoNode;
      for (const auto& ds : data) {
        if (ds.node->name() == name) id = ds.node->id();
      }
      for (const auto& cs : compute) {
        if (cs.node->name() == name) id = cs.node->id();
      }
      if (id == net::kNoNode) throw std::logic_error("Testbed: unknown node name '" + name + "'");
      out.push_back(id);
    }
    return out;
  }
};

}  // namespace clouds::test
