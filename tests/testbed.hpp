// Shared multi-node wiring for kernel/DSM/consistency tests: N compute
// servers and M data servers on one Ethernet, mirroring the paper's
// prototype configuration (diskless Sun-3/60 compute servers + data
// servers), without the full Clouds object layer on top.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dsm/client.hpp"
#include "dsm/server.hpp"
#include "dsm/sync_client.hpp"
#include "net/ethernet.hpp"
#include "ra/mmu.hpp"
#include "ra/node.hpp"
#include "sim/cost_model.hpp"
#include "sim/simulation.hpp"
#include "store/disk_store.hpp"

namespace clouds::test {

struct Testbed {
  sim::Simulation sim;
  sim::CostModel cost;
  net::Ethernet ether{sim, cost};

  struct DataServer {
    std::unique_ptr<ra::Node> node;
    std::unique_ptr<store::DiskStore> store;
    std::unique_ptr<dsm::DsmServer> server;
  };
  struct ComputeServer {
    std::unique_ptr<ra::Node> node;
    dsm::DsmClientPartition* dsm = nullptr;  // owned by the node
    std::unique_ptr<ra::Mmu> mmu;
    std::unique_ptr<dsm::SyncClient> sync;
  };

  std::vector<DataServer> data;
  std::vector<ComputeServer> compute;

  // Node ids: data servers 100, 101, ...; compute servers 1, 2, ...
  explicit Testbed(int n_compute, int n_data, std::uint64_t seed = 42,
                   std::size_t frame_capacity = 2048)
      : sim(seed) {
    for (int i = 0; i < n_data; ++i) {
      DataServer ds;
      ds.node = std::make_unique<ra::Node>(sim, cost, ether, 100 + i, "data" + std::to_string(i),
                                           static_cast<int>(ra::NodeRole::data));
      ds.store = std::make_unique<store::DiskStore>(ds.node->id(), cost);
      ds.server = std::make_unique<dsm::DsmServer>(*ds.node, *ds.store);
      data.push_back(std::move(ds));
    }
    for (int i = 0; i < n_compute; ++i) {
      ComputeServer cs;
      cs.node = std::make_unique<ra::Node>(sim, cost, ether, 1 + i, "cpu" + std::to_string(i),
                                           static_cast<int>(ra::NodeRole::compute));
      auto part = std::make_unique<dsm::DsmClientPartition>(*cs.node, nullptr, frame_capacity);
      cs.dsm = part.get();
      cs.node->addPartition(std::move(part));
      cs.mmu = std::make_unique<ra::Mmu>(*cs.node);
      cs.sync = std::make_unique<dsm::SyncClient>(*cs.node, nullptr);
      compute.push_back(std::move(cs));
    }
  }
};

}  // namespace clouds::test
